package topology

import (
	"testing"
	"testing/quick"

	"sldf/internal/engine"
	"sldf/internal/netsim"
)

func opts() netsim.NetworkOptions { return netsim.NetworkOptions{Seed: 1, Workers: 1} }

func TestSingleSwitchStructure(t *testing.T) {
	s, err := BuildSingleSwitch(4, DefaultLinkClasses(1, 1), opts())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Net.Close()
	if got := len(s.Net.Routers); got != 5 {
		t.Fatalf("router count %d, want 5 (1 switch + 4 NICs)", got)
	}
	if s.Net.NumChips() != 4 {
		t.Fatalf("chips = %d, want 4", s.Net.NumChips())
	}
	sw := s.Net.Router(s.Switch)
	if len(sw.In) != 4 || len(sw.Out) != 4 {
		t.Fatalf("switch ports in=%d out=%d, want 4/4", len(sw.In), len(sw.Out))
	}
	for c, nic := range s.NICs {
		r := s.Net.Router(nic)
		if r.Chip != int32(c) {
			t.Fatalf("NIC %d chip = %d", c, r.Chip)
		}
		if r.InjIn < 0 || r.EjectOut < 0 {
			t.Fatalf("NIC %d missing terminal ports", c)
		}
	}
}

func TestSingleSwitchRejectsTiny(t *testing.T) {
	if _, err := BuildSingleSwitch(1, DefaultLinkClasses(1, 1), opts()); err == nil {
		t.Fatal("1-terminal switch must be rejected")
	}
}

func TestMeshCGroupStructure(t *testing.T) {
	g, err := BuildMeshCGroup(2, 2, DefaultLinkClasses(1, 1), opts())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Net.Close()
	if g.M != 4 {
		t.Fatalf("mesh side %d, want 4", g.M)
	}
	if len(g.Net.Routers) != 16 {
		t.Fatalf("routers %d, want 16", len(g.Net.Routers))
	}
	if g.Net.NumChips() != 4 {
		t.Fatalf("chips %d, want 4 chiplets", g.Net.NumChips())
	}
	// Every chip owns 4 cores (2x2 NoC).
	for c, nodes := range g.Net.ChipNodes {
		if len(nodes) != 4 {
			t.Fatalf("chip %d has %d cores, want 4", c, len(nodes))
		}
	}
	// Degree check: corner cores have 2 mesh links, edges 3, interior 4.
	degreeCount := map[int]int{}
	for i := range g.Net.Routers {
		r := &g.Net.Routers[i]
		links := 0
		for o := range r.Out {
			if r.Out[o].Link != nil {
				links++
			}
		}
		degreeCount[links]++
	}
	if degreeCount[2] != 4 || degreeCount[3] != 8 || degreeCount[4] != 4 {
		t.Fatalf("mesh degree histogram %v, want 4 corners/8 edges/4 interior", degreeCount)
	}
}

func TestMeshCGroupLinkClasses(t *testing.T) {
	g, err := BuildMeshCGroup(2, 2, DefaultLinkClasses(1, 1), opts())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Net.Close()
	onchip, sr := 0, 0
	for _, l := range g.Net.Links {
		switch l.Class {
		case netsim.HopOnChip:
			onchip++
		case netsim.HopShortReach:
			sr++
		default:
			t.Fatalf("unexpected link class %v in standalone C-group", l.Class)
		}
	}
	// 4x4 mesh: 24 bidi links total; 8 bidi cross chiplet boundaries
	// (4 vertical crossings + 4 horizontal crossings).
	if onchip != 32 || sr != 16 {
		t.Fatalf("onchip=%d sr=%d directed links, want 32/16", onchip, sr)
	}
}

func TestMeshXYRouting(t *testing.T) {
	g, err := BuildMeshCGroup(2, 2, DefaultLinkClasses(1, 1), opts())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Net.Close()
	g.Net.SetRoute(g.RouteXY())
	g.Net.SetTraffic(netsim.GeneratorFunc(func(now int64, src int32, node int, rng *engine.RNG) int32 {
		if now < 50 && rng.Bernoulli(0.2) {
			d := rng.Int31n(4)
			if d == src {
				return -1
			}
			return d
		}
		return -1
	}), 4, netsim.DstSameIndex)
	g.Net.StartMeasurement()
	if err := g.Net.Run(50); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Net.Drain(1000); err != nil {
		t.Fatal(err)
	}
	st := g.Net.Snapshot()
	if st.InjectedPkts == 0 || st.InjectedPkts != st.DeliveredPkts {
		t.Fatalf("injected %d delivered %d", st.InjectedPkts, st.DeliveredPkts)
	}
	// XY on a 4x4 mesh: max 6 mesh hops; mean latency must be modest.
	if m := st.MeanLatency(); m < 2 || m > 60 {
		t.Fatalf("mean latency %v out of expected band", m)
	}
}

func TestDragonflyStructureRadix16(t *testing.T) {
	p := DragonflyParams{P: 4, A: 8, H: 5}
	if p.Groups() != 41 {
		t.Fatalf("groups = %d, want 41", p.Groups())
	}
	if p.Chips() != 1312 {
		t.Fatalf("chips = %d, want 1312", p.Chips())
	}
	df, err := BuildDragonfly(p, DefaultLinkClasses(3, 1), opts())
	if err != nil {
		t.Fatal(err)
	}
	defer df.Net.Close()
	// 41*8 switches + 1312 NICs.
	if got := len(df.Net.Routers); got != 41*8+1312 {
		t.Fatalf("router count %d, want %d", got, 41*8+1312)
	}
	// Each switch: 4 terminal + 7 local + 5 global = 16 ports (radix 16).
	for w := 0; w < 41; w++ {
		for s := 0; s < 8; s++ {
			r := df.Net.Router(df.Switches[w][s])
			links := 0
			for o := range r.Out {
				if r.Out[o].Link != nil {
					links++
				}
			}
			if links != 16 {
				t.Fatalf("switch (%d,%d) radix %d, want 16", w, s, links)
			}
		}
	}
}

func TestDragonflyGlobalWiringBijective(t *testing.T) {
	p := DragonflyParams{P: 2, A: 3, H: 2} // g = 7
	df, err := BuildDragonfly(p, DefaultLinkClasses(3, 1), opts())
	if err != nil {
		t.Fatal(err)
	}
	defer df.Net.Close()
	g := p.Groups()
	// Count global links between every pair of groups: must be exactly one
	// bidirectional link per pair.
	pairs := map[[2]int32]int{}
	for _, l := range df.Net.Links {
		if l.Class != netsim.HopGlobal {
			continue
		}
		w1 := df.Net.Router(l.Src).WGroup
		w2 := df.Net.Router(l.Dst).WGroup
		if w1 > w2 {
			w1, w2 = w2, w1
		}
		pairs[[2]int32{w1, w2}]++
	}
	want := g * (g - 1) / 2
	if len(pairs) != want {
		t.Fatalf("connected group pairs %d, want %d", len(pairs), want)
	}
	for pair, n := range pairs {
		if n != 2 { // two directed links per bidi channel
			t.Fatalf("pair %v has %d directed global links, want 2", pair, n)
		}
	}
}

func TestDragonflyGlobalOwnerConsistent(t *testing.T) {
	p := DragonflyParams{P: 2, A: 3, H: 2}
	df, err := BuildDragonfly(p, DefaultLinkClasses(3, 1), opts())
	if err != nil {
		t.Fatal(err)
	}
	defer df.Net.Close()
	g := p.Groups()
	for w := 0; w < g; w++ {
		for wd := 0; wd < g; wd++ {
			if w == wd {
				continue
			}
			s, k := df.GlobalOwner(w, wd)
			// The switch's k-th global port must lead to a switch in wd.
			sw := df.Net.Router(df.Switches[w][s])
			out := df.globalPort[w][s][k]
			l := sw.Out[out].Link
			if l == nil {
				t.Fatalf("no link at global port (%d,%d,%d)", w, s, k)
			}
			if got := df.Net.Router(l.Dst).WGroup; got != int32(wd) {
				t.Fatalf("global owner (%d→%d): port leads to group %d", w, wd, got)
			}
		}
	}
}

func TestDragonflyRejectsPartial(t *testing.T) {
	if err := (DragonflyParams{P: 2, A: 3, H: 2, G: 5}).Validate(); err == nil {
		t.Fatal("non-maximal G must be rejected")
	}
	if err := (DragonflyParams{P: 2, A: 3, H: 2, G: 1}).Validate(); err != nil {
		t.Fatalf("single-group dragonfly should validate: %v", err)
	}
}

func TestSLDFParamsPaperConfigs(t *testing.T) {
	r16 := SLDFParams{NoCDim: 2, ChipCols: 2, ChipRows: 2, AB: 8, H: 5}
	if r16.Groups() != 41 || r16.Chips() != 1312 {
		t.Fatalf("radix-16: g=%d chips=%d, want 41/1312", r16.Groups(), r16.Chips())
	}
	if r16.ExternalPorts() != 12 {
		t.Fatalf("radix-16 k=%d, want 12", r16.ExternalPorts())
	}
	r32 := SLDFParams{NoCDim: 2, ChipCols: 4, ChipRows: 2, AB: 16, H: 9}
	if r32.Groups() != 145 || r32.Chips() != 18560 {
		t.Fatalf("radix-32: g=%d chips=%d, want 145/18560", r32.Groups(), r32.Chips())
	}
	if r32.ExternalPorts() != 24 {
		t.Fatalf("radix-32 k=%d, want 24", r32.ExternalPorts())
	}
}

// smallSLDF returns a small but fully-featured configuration: g = 2*2+1 = 5.
func smallSLDF(layout PortLayout) SLDFParams {
	return SLDFParams{NoCDim: 2, ChipCols: 2, ChipRows: 2, AB: 2, H: 2, Layout: layout}
}

func TestSLDFStructureSmall(t *testing.T) {
	for _, layout := range []PortLayout{LayoutPerimeter, LayoutSouthNorth} {
		p := smallSLDF(layout)
		s, err := BuildSLDF(p, DefaultLinkClasses(4, 1), opts())
		if err != nil {
			t.Fatal(err)
		}
		g := p.Groups()
		wantCores := g * p.AB * p.MeshX() * p.MeshY()
		wantPorts := g * p.AB * p.ExternalPorts()
		if got := len(s.Net.Routers); got != wantCores+wantPorts {
			t.Fatalf("layout %d: routers %d, want %d cores + %d ports",
				layout, got, wantCores, wantPorts)
		}
		if s.Net.NumChips() != p.Chips() {
			t.Fatalf("chips %d, want %d", s.Net.NumChips(), p.Chips())
		}
		// Every core must have a direction table and a terminal.
		for i := range s.Net.Routers {
			r := &s.Net.Routers[i]
			if r.Kind == netsim.KindCore {
				if r.InjIn < 0 || r.EjectOut < 0 {
					t.Fatalf("core %d missing terminal", i)
				}
			}
			if r.Kind == netsim.KindPort {
				// Exactly 2 links: attach + external.
				if len(r.Out) != 2 || len(r.In) != 2 {
					t.Fatalf("port node %d has %d/%d ports, want 2/2", i, len(r.In), len(r.Out))
				}
			}
		}
		s.Net.Close()
	}
}

func TestSLDFLocalWiring(t *testing.T) {
	p := smallSLDF(LayoutPerimeter)
	s, err := BuildSLDF(p, DefaultLinkClasses(4, 1), opts())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Net.Close()
	g := p.Groups()
	for w := 0; w < g; w++ {
		for c1 := 0; c1 < p.AB; c1++ {
			for c2 := 0; c2 < p.AB; c2++ {
				if c1 == c2 {
					continue
				}
				pi := s.CGroups[w][c1].LocalPorts[c2]
				if pi.PortExt < 0 {
					t.Fatalf("local port (%d,%d→%d) not wired", w, c1, c2)
				}
				r := s.Net.Router(pi.Node)
				l := r.Out[pi.PortExt].Link
				peer := s.Net.Router(l.Dst)
				if peer.WGroup != int32(w) || peer.CGroup != int32(c2) {
					t.Fatalf("local port (%d,%d→%d) reaches (%d,%d)",
						w, c1, c2, peer.WGroup, peer.CGroup)
				}
				if l.Class != netsim.HopLongLocal {
					t.Fatalf("local link class %v", l.Class)
				}
			}
		}
	}
}

func TestSLDFGlobalWiring(t *testing.T) {
	p := smallSLDF(LayoutPerimeter)
	s, err := BuildSLDF(p, DefaultLinkClasses(4, 1), opts())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Net.Close()
	g := p.Groups()
	// Every ordered pair of W-groups must be reachable by the owner tables.
	for w := 0; w < g; w++ {
		for wd := 0; wd < g; wd++ {
			if w == wd {
				continue
			}
			c, j := s.GlobalChannelOwner(w, wd)
			pi := s.CGroups[w][c].GlobalPorts[j]
			if pi.PortExt < 0 {
				t.Fatalf("global port (%d,%d,%d) not wired", w, c, j)
			}
			r := s.Net.Router(pi.Node)
			peer := s.Net.Router(r.Out[pi.PortExt].Link.Dst)
			if peer.WGroup != int32(wd) {
				t.Fatalf("channel %d→%d lands in W-group %d", w, wd, peer.WGroup)
			}
			// EntryCGroup must agree with the actual landing C-group.
			if got := s.EntryCGroup(w, wd); int32(got) != peer.CGroup {
				t.Fatalf("EntryCGroup(%d,%d)=%d, actual %d", w, wd, got, peer.CGroup)
			}
		}
	}
}

func TestSLDFSingleWGroup(t *testing.T) {
	p := SLDFParams{NoCDim: 2, ChipCols: 2, ChipRows: 2, AB: 8, H: 5, G: 1}
	s, err := BuildSLDF(p, DefaultLinkClasses(4, 1), opts())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Net.Close()
	if s.Net.NumChips() != 32 {
		t.Fatalf("single W-group chips = %d, want 32", s.Net.NumChips())
	}
	for _, l := range s.Net.Links {
		if l.Class == netsim.HopGlobal {
			t.Fatal("single W-group must have no global links")
		}
	}
}

func TestSLDFChipLocationRoundTrip(t *testing.T) {
	p := smallSLDF(LayoutPerimeter)
	s, err := BuildSLDF(p, DefaultLinkClasses(4, 1), opts())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Net.Close()
	f := func(chipRaw uint16) bool {
		chip := int32(int(chipRaw) % p.Chips())
		w, c, chiplet := s.ChipLocation(chip)
		// All terminal nodes of the chip must sit in (w, c).
		for _, id := range s.Net.ChipNodes[chip] {
			r := s.Net.Router(id)
			if r.WGroup != int32(w) || r.CGroup != int32(c) {
				return false
			}
		}
		return chiplet >= 0 && chiplet < p.ChipsPerCGroup()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSLDFSouthNorthAttachRows(t *testing.T) {
	p := smallSLDF(LayoutSouthNorth)
	s, err := BuildSLDF(p, DefaultLinkClasses(4, 1), opts())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Net.Close()
	my := p.MeshY()
	for w := 0; w < p.Groups(); w++ {
		for c := 0; c < p.AB; c++ {
			cg := &s.CGroups[w][c]
			for peer, pi := range cg.LocalPorts {
				if peer == c || pi.Node == 0 && pi.AttachCore == 0 {
					continue
				}
				if y := s.Net.Router(pi.AttachCore).Y; y != int16(my-1) {
					t.Fatalf("local port attach row %d, want %d", y, my-1)
				}
			}
			for _, pi := range cg.GlobalPorts {
				if y := s.Net.Router(pi.AttachCore).Y; y != 0 {
					t.Fatalf("global port attach row %d, want 0", y)
				}
			}
		}
	}
}

func TestSLDFInvariantsRandomParams(t *testing.T) {
	f := func(noc, cols, rows, ab, h uint8) bool {
		p := SLDFParams{
			NoCDim:   int(noc%2) + 1,
			ChipCols: int(cols%2) + 1,
			ChipRows: int(rows%2) + 1,
			AB:       int(ab%3) + 1,
			H:        int(h%2) + 1,
		}
		if p.MeshX() < 2 || p.MeshY() < 2 {
			return true // builder rejects; not this test's concern
		}
		if p.Groups() > 9 { // keep runtime bounded
			return true
		}
		s, err := BuildSLDF(p, DefaultLinkClasses(4, 1), opts())
		if err != nil {
			return false
		}
		defer s.Net.Close()
		// Node count invariant.
		want := p.Groups() * p.AB * (p.MeshX()*p.MeshY() + p.ExternalPorts())
		return len(s.Net.Routers) == want && s.Net.NumChips() == p.Chips()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPerimeterSlots(t *testing.T) {
	slots := perimeterSlots(4, 4)
	if len(slots) != 12 {
		t.Fatalf("perimeter of 4x4 = %d, want 12", len(slots))
	}
	seen := map[[2]int]bool{}
	for _, s := range slots {
		if seen[s] {
			t.Fatalf("duplicate perimeter slot %v", s)
		}
		seen[s] = true
		if s[0] != 0 && s[0] != 3 && s[1] != 0 && s[1] != 3 {
			t.Fatalf("slot %v not on perimeter", s)
		}
	}
}
