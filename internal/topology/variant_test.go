package topology

import (
	"testing"

	"sldf/internal/netsim"
)

// TestSmallScaleVariant333 validates the paper's Sec. III-D1 claim: "a
// single-chiplet C-group with only 12 external ports can be used to build a
// system of up to 333 chips". The maximum over ab-1+h = 12 is ab=9, h=4:
// 9 C-groups × (9·4+1) W-groups = 333 chiplets.
func TestSmallScaleVariant333(t *testing.T) {
	best, bestAB := 0, 0
	for ab := 2; ab <= 12; ab++ {
		h := 12 - (ab - 1)
		if h < 1 {
			continue
		}
		n := ab * (ab*h + 1)
		if n > best {
			best, bestAB = n, ab
		}
	}
	if best != 333 || bestAB != 9 {
		t.Fatalf("max single-chiplet system = %d chips at ab=%d, want 333 at 9", best, bestAB)
	}
	// And the topology actually builds: one chiplet per C-group.
	p := SLDFParams{NoCDim: 2, ChipCols: 1, ChipRows: 1, AB: 9, H: 4}
	s, err := BuildSLDF(p, DefaultLinkClasses(4, 1), opts())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Net.Close()
	if s.Net.NumChips() != 333 {
		t.Fatalf("built %d chips, want 333", s.Net.NumChips())
	}
	if p.ExternalPorts() != 12 {
		t.Fatalf("k = %d, want 12", p.ExternalPorts())
	}
}

// TestPortLabelOrderProperty2 checks the paper's Property 2 wiring order on
// the perimeter layout: walking the port labels of a C-group must first
// meet local ports to lower C-groups, then global ports, then local ports
// to higher C-groups.
func TestPortLabelOrderProperty2(t *testing.T) {
	p := SLDFParams{NoCDim: 2, ChipCols: 2, ChipRows: 2, AB: 4, H: 3}
	s, err := BuildSLDF(p, DefaultLinkClasses(4, 1), opts())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Net.Close()
	coords := p.portAttachCoords(2) // C-group index 2 of 4
	// Expect: locals to 0,1 | globals ×3 | locals to 3.
	if len(coords) != p.ExternalPorts() {
		t.Fatalf("coords = %d, want %d", len(coords), p.ExternalPorts())
	}
	cg := &s.CGroups[0][2]
	// The wiring must agree with the canonical order: LocalPorts[0] and
	// LocalPorts[1] were assigned the first two coordinates.
	for peer := 0; peer < 2; peer++ {
		attach := s.Net.Router(cg.LocalPorts[peer].AttachCore)
		if int(attach.X) != coords[peer][0] || int(attach.Y) != coords[peer][1] {
			t.Fatalf("local port %d attached at (%d,%d), want %v",
				peer, attach.X, attach.Y, coords[peer])
		}
	}
	for j := 0; j < 3; j++ {
		attach := s.Net.Router(cg.GlobalPorts[j].AttachCore)
		want := coords[2+j]
		if int(attach.X) != want[0] || int(attach.Y) != want[1] {
			t.Fatalf("global port %d attached at (%d,%d), want %v",
				j, attach.X, attach.Y, want)
		}
	}
	attach := s.Net.Router(cg.LocalPorts[3].AttachCore)
	if int(attach.X) != coords[5][0] || int(attach.Y) != coords[5][1] {
		t.Fatalf("local port 3 attached at (%d,%d), want %v", attach.X, attach.Y, coords[5])
	}
}

// TestRectangularCGroup checks the radix-32-class rectangular C-group shape
// (4×2 chiplets, 8×4 router mesh).
func TestRectangularCGroup(t *testing.T) {
	p := SLDFParams{NoCDim: 2, ChipCols: 4, ChipRows: 2, AB: 16, H: 9, G: 1}
	if p.MeshX() != 8 || p.MeshY() != 4 {
		t.Fatalf("mesh %dx%d, want 8x4", p.MeshX(), p.MeshY())
	}
	s, err := BuildSLDF(p, DefaultLinkClasses(4, 1), opts())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Net.Close()
	if s.Net.NumChips() != 16*8 {
		t.Fatalf("chips = %d, want 128", s.Net.NumChips())
	}
	// Chips must each own 4 cores in a 2x2 block.
	for c, nodes := range s.Net.ChipNodes {
		if len(nodes) != 4 {
			t.Fatalf("chip %d has %d cores", c, len(nodes))
		}
	}
	// Mesh degree invariants inside a C-group: corners 2, edges 3, inner 4
	// (port attach links excluded by counting only core-to-core links).
	cg := s.CGroups[0][0]
	deg := func(id netsim.NodeID) int {
		r := s.Net.Router(id)
		n := 0
		for o := range r.Out {
			l := r.Out[o].Link
			if l == nil {
				continue
			}
			if s.Net.Router(l.Dst).Kind == netsim.KindCore {
				n++
			}
		}
		return n
	}
	if d := deg(cg.Cores[0][0]); d != 2 {
		t.Fatalf("corner degree %d", d)
	}
	if d := deg(cg.Cores[0][3]); d != 3 {
		t.Fatalf("edge degree %d", d)
	}
	if d := deg(cg.Cores[1][3]); d != 4 {
		t.Fatalf("interior degree %d", d)
	}
}

// TestWGroupLocalDiameter verifies the paper's structural claim that all
// C-groups in a W-group are exactly one local hop apart (all-to-all).
func TestWGroupLocalDiameter(t *testing.T) {
	p := SLDFParams{NoCDim: 2, ChipCols: 2, ChipRows: 2, AB: 5, H: 2}
	s, err := BuildSLDF(p, DefaultLinkClasses(4, 1), opts())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Net.Close()
	for w := 0; w < p.Groups(); w++ {
		for c1 := 0; c1 < p.AB; c1++ {
			reach := map[int32]bool{}
			for c2 := 0; c2 < p.AB; c2++ {
				if c1 == c2 {
					continue
				}
				pi := s.CGroups[w][c1].LocalPorts[c2]
				peer := s.Net.Router(s.Net.Router(pi.Node).Out[pi.PortExt].Link.Dst)
				reach[peer.CGroup] = true
			}
			if len(reach) != p.AB-1 {
				t.Fatalf("C-group (%d,%d) reaches %d peers, want %d",
					w, c1, len(reach), p.AB-1)
			}
		}
	}
}
