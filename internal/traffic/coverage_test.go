package traffic

import (
	"testing"
)

func TestRingOrderWalk(t *testing.T) {
	r := rng()
	order := []int32{5, 2, 8, 1}
	ring := NewRingOrder(order, false)
	if ring.Name() != "ring-ordered" {
		t.Fatalf("name %q", ring.Name())
	}
	if d := ring.Dest(5, r); d != 2 {
		t.Fatalf("dest(5) = %d", d)
	}
	if d := ring.Dest(1, r); d != 5 {
		t.Fatalf("wrap dest(1) = %d", d)
	}
	if d := ring.Dest(99, r); d != -1 {
		t.Fatalf("foreign chip dest = %d", d)
	}
}

func TestRingOrderBidirectional(t *testing.T) {
	r := rng()
	ring := NewRingOrder([]int32{0, 1, 2, 3}, true)
	if ring.Name() != "ring-ordered-bidir" {
		t.Fatalf("name %q", ring.Name())
	}
	succ, pred := 0, 0
	for i := 0; i < 1000; i++ {
		switch ring.Dest(1, r) {
		case 2:
			succ++
		case 0:
			pred++
		default:
			t.Fatal("bidir ring left neighbourhood")
		}
	}
	if succ < 350 || pred < 350 {
		t.Fatalf("bidir split %d/%d", succ, pred)
	}
}

func TestRingOrderDegenerate(t *testing.T) {
	r := rng()
	if d := NewRingOrder([]int32{7}, false).Dest(7, r); d != -1 {
		t.Fatalf("singleton ring produced %d", d)
	}
	if d := NewRingOrder(nil, false).Dest(0, r); d != -1 {
		t.Fatalf("empty ring produced %d", d)
	}
}

func TestUniformDegenerate(t *testing.T) {
	r := rng()
	if d := (Uniform{N: 1}).Dest(0, r); d != -1 {
		t.Fatalf("1-chip uniform produced %d", d)
	}
}

func TestWorstCaseDegenerate(t *testing.T) {
	r := rng()
	if d := (WorstCase{ChipsPerGroup: 4, Groups: 1}).Dest(0, r); d != -1 {
		t.Fatalf("single-group worst case produced %d", d)
	}
}

func TestHotspotSelfGroupTraffic(t *testing.T) {
	// Hotspot traffic may stay inside the sender's own hot group.
	h := Hotspot{ChipsPerGroup: 4, HotGroups: []int32{0, 1}}
	r := rng()
	sawOwn, sawOther := false, false
	for i := 0; i < 500; i++ {
		d := h.Dest(1, r)
		if d/4 == 0 {
			sawOwn = true
		} else {
			sawOther = true
		}
	}
	if !sawOwn || !sawOther {
		t.Fatalf("hotspot coverage own=%v other=%v", sawOwn, sawOther)
	}
}

func TestRateZero(t *testing.T) {
	g := NewRate(Uniform{N: 8}, 0, 4, 4)
	r := rng()
	for i := 0; i < 1000; i++ {
		if g.NextDest(int64(i), 0, 0, r) != -1 {
			t.Fatal("zero-rate generator produced a packet")
		}
	}
}

func TestVolumePartialProgress(t *testing.T) {
	v := NewVolume(Ring{N: 2}, 32, 4, 2, 1) // 8 packets per node
	r := rng()
	for i := 0; i < 3; i++ {
		v.NextDest(int64(i), 0, 0, r)
	}
	if v.Done() {
		t.Fatal("volume done too early")
	}
}

func TestByNameAliases(t *testing.T) {
	for _, name := range []string{"bitreverse", "bitshuffle", "bittranspose"} {
		if _, err := ByName(name, 32); err != nil {
			t.Fatalf("alias %q rejected: %v", name, err)
		}
	}
}

func TestLog2Floor(t *testing.T) {
	cases := map[int32]int{1: 1, 2: 1, 3: 1, 4: 2, 31: 4, 32: 5, 1312: 10}
	for n, want := range cases {
		if got := log2floor(n); got != want {
			t.Fatalf("log2floor(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestPatternNames(t *testing.T) {
	r := int32(64)
	names := map[string]Pattern{
		"uniform":       Uniform{N: r},
		"bit-reverse":   BitReverse(r),
		"bit-shuffle":   BitShuffle(r),
		"bit-transpose": BitTranspose(r),
		"hotspot":       Hotspot{ChipsPerGroup: 8, HotGroups: []int32{0}},
		"worst-case":    WorstCase{ChipsPerGroup: 8, Groups: 8},
		"ring":          Ring{N: r},
	}
	for want, p := range names {
		if p.Name() != want {
			t.Fatalf("pattern name %q, want %q", p.Name(), want)
		}
	}
}
