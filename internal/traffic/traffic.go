// Package traffic implements the workloads of the paper's evaluation
// (Sec. V-A3): unicast permutation patterns (uniform, bit-reverse,
// bit-shuffle, bit-transpose), adversarial patterns (hotspot, worst-case),
// and collective patterns (unidirectional/bidirectional ring AllReduce).
//
// Patterns are defined at chip granularity: Dest maps a source chip to a
// destination chip (or -1 for silence). The Rate generator turns a pattern
// into a Bernoulli open-loop injection process at a configured rate in
// flits/cycle/chip, matching how the paper sweeps injection rates.
package traffic

import (
	"fmt"
	"math/bits"

	"sldf/internal/engine"
	"sldf/internal/netsim"
)

// Pattern maps a source chip to a destination chip. Implementations must be
// safe for concurrent calls with distinct rng streams.
type Pattern interface {
	// Dest returns the destination chip for one packet from src, or -1 if
	// src does not transmit under this pattern.
	Dest(src int32, rng *engine.RNG) int32
	// Name identifies the pattern in reports.
	Name() string
}

// Uniform sends every packet to a uniformly random chip other than the
// source, over chips [Base, Base+N).
type Uniform struct {
	N    int32
	Base int32
}

// Dest implements Pattern.
//
//sldf:hotpath
func (u Uniform) Dest(src int32, rng *engine.RNG) int32 {
	if u.N < 2 {
		return -1
	}
	if src < u.Base || src >= u.Base+u.N {
		return -1
	}
	for {
		d := u.Base + rng.Int31n(u.N)
		if d != src {
			return d
		}
	}
}

// Name implements Pattern.
func (u Uniform) Name() string { return "uniform" }

// bitPermutation applies a permutation over the low B bits of the chip
// index, where B = floor(log2(N)). Chips at index >= 2^B (when N is not a
// power of two) fall back to uniform traffic, which keeps them active
// without breaking the permutation property of the main block — the
// standard treatment for non-power-of-two networks.
type bitPermutation struct {
	n    int32
	bits int
	perm func(v, b int) int
	name string
}

func (p bitPermutation) Name() string { return p.name }

//sldf:hotpath
func (p bitPermutation) Dest(src int32, rng *engine.RNG) int32 {
	if src >= 1<<p.bits {
		return Uniform{N: p.n}.Dest(src, rng)
	}
	d := int32(p.perm(int(src), p.bits))
	if d == src {
		return -1 // self-traffic is dropped, as in standard traffic suites
	}
	return d
}

// BitReverse returns the bit-reversal permutation pattern over n chips.
func BitReverse(n int32) Pattern {
	b := log2floor(n)
	return bitPermutation{n: n, bits: b, name: "bit-reverse",
		perm: func(v, b int) int {
			return int(bits.Reverse32(uint32(v)) >> (32 - b))
		}}
}

// BitShuffle returns the perfect-shuffle (rotate-left-1) pattern.
func BitShuffle(n int32) Pattern {
	b := log2floor(n)
	return bitPermutation{n: n, bits: b, name: "bit-shuffle",
		perm: func(v, b int) int {
			hi := (v >> (b - 1)) & 1
			return ((v << 1) | hi) & (1<<b - 1)
		}}
}

// BitTranspose returns the transpose pattern (swap high/low halves).
func BitTranspose(n int32) Pattern {
	b := log2floor(n)
	h := b / 2
	return bitPermutation{n: n, bits: b, name: "bit-transpose",
		perm: func(v, b int) int {
			lo := v & (1<<h - 1)
			hi := v >> h
			return lo<<(b-h) | hi
		}}
}

func log2floor(n int32) int {
	if n < 2 {
		return 1
	}
	return 31 - bits.LeadingZeros32(uint32(n))
}

// Hotspot confines communication to the chips of a set of W-groups: every
// chip of a hot group sends to a random chip in a (uniformly chosen) hot
// group; all other chips are silent. This is the paper's hotspot pattern
// with four hot W-groups.
type Hotspot struct {
	ChipsPerGroup int32
	HotGroups     []int32
}

// Name implements Pattern.
func (h Hotspot) Name() string { return "hotspot" }

// Dest implements Pattern.
//
//sldf:hotpath
func (h Hotspot) Dest(src int32, rng *engine.RNG) int32 {
	g := src / h.ChipsPerGroup
	hot := false
	for _, hg := range h.HotGroups {
		if g == hg {
			hot = true
			break
		}
	}
	if !hot {
		return -1
	}
	// Rejection-sample a destination, but bounded: with one hot group of a
	// single chip the only candidate is src itself and an unbounded loop
	// never terminates. Non-degenerate draw spaces exit on the first
	// accepted sample exactly as before (identical RNG consumption).
	for try := 0; try < 16; try++ {
		tg := h.HotGroups[rng.Intn(len(h.HotGroups))]
		d := tg*h.ChipsPerGroup + rng.Int31n(h.ChipsPerGroup)
		if d != src {
			return d
		}
	}
	// Fall back deterministically: the first hot-group chip that is not the
	// source, or silence when src is the entire hot set.
	for _, tg := range h.HotGroups {
		for c := int32(0); c < h.ChipsPerGroup; c++ {
			if d := tg*h.ChipsPerGroup + c; d != src {
				return d
			}
		}
	}
	return -1
}

// WorstCase is the Dragonfly adversarial pattern: every chip of W-group Wi
// sends to a random chip of W-group Wi+1, saturating the single global
// channel between adjacent groups under minimal routing.
type WorstCase struct {
	ChipsPerGroup int32
	Groups        int32
}

// Name implements Pattern.
func (w WorstCase) Name() string { return "worst-case" }

// Dest implements Pattern.
//
//sldf:hotpath
func (w WorstCase) Dest(src int32, rng *engine.RNG) int32 {
	if w.Groups < 2 {
		return -1
	}
	g := src / w.ChipsPerGroup
	tg := (g + 1) % w.Groups
	return tg*w.ChipsPerGroup + rng.Int31n(w.ChipsPerGroup)
}

// Ring sends to the successor chip on a logical ring over chips
// [Base, Base+N) — the steady-state traffic of ring AllReduce. When
// Bidirectional, each packet goes to the successor or predecessor with
// equal probability (each direction carries half the volume).
type Ring struct {
	N             int32
	Base          int32
	Bidirectional bool
}

// Name implements Pattern.
func (r Ring) Name() string {
	if r.Bidirectional {
		return "ring-bidir"
	}
	return "ring"
}

// Dest implements Pattern.
//
//sldf:hotpath
func (r Ring) Dest(src int32, rng *engine.RNG) int32 {
	if src < r.Base || src >= r.Base+r.N || r.N < 2 {
		return -1
	}
	i := src - r.Base
	if r.Bidirectional && rng.Bernoulli(0.5) {
		return r.Base + (i-1+r.N)%r.N
	}
	return r.Base + (i+1)%r.N
}

// RingOrder is a ring over an explicit chip sequence (e.g. a snake order
// that embeds the ring on physically adjacent chips of a mesh C-group, as
// collective libraries do). Chips not in the sequence stay silent.
type RingOrder struct {
	Order         []int32
	Bidirectional bool
	pos           map[int32]int32
}

// NewRingOrder builds the ring and its position index.
func NewRingOrder(order []int32, bidirectional bool) *RingOrder {
	r := &RingOrder{Order: order, Bidirectional: bidirectional,
		pos: make(map[int32]int32, len(order))}
	for i, c := range order {
		r.pos[c] = int32(i)
	}
	return r
}

// Name implements Pattern.
func (r *RingOrder) Name() string {
	if r.Bidirectional {
		return "ring-ordered-bidir"
	}
	return "ring-ordered"
}

// Dest implements Pattern.
//
//sldf:hotpath
func (r *RingOrder) Dest(src int32, rng *engine.RNG) int32 {
	i, ok := r.pos[src]
	if !ok || len(r.Order) < 2 {
		return -1
	}
	n := int32(len(r.Order))
	if r.Bidirectional && rng.Bernoulli(0.5) {
		return r.Order[(i-1+n)%n]
	}
	return r.Order[(i+1)%n]
}

// Permutation wraps an arbitrary fixed chip permutation.
type Permutation struct {
	Map  []int32
	Desc string
}

// Name implements Pattern.
func (p Permutation) Name() string { return p.Desc }

// Dest implements Pattern.
//
//sldf:hotpath
func (p Permutation) Dest(src int32, rng *engine.RNG) int32 {
	if int(src) >= len(p.Map) {
		return -1
	}
	d := p.Map[src]
	if d == src {
		return -1
	}
	return d
}

// ByName constructs a standard pattern for n chips from its name.
// Supported: uniform, bit-reverse, bit-shuffle, bit-transpose.
func ByName(name string, n int32) (Pattern, error) {
	switch name {
	case "uniform":
		return Uniform{N: n}, nil
	case "bit-reverse", "bitreverse":
		return BitReverse(n), nil
	case "bit-shuffle", "bitshuffle":
		return BitShuffle(n), nil
	case "bit-transpose", "bittranspose":
		return BitTranspose(n), nil
	default:
		return nil, fmt.Errorf("traffic: unknown pattern %q", name)
	}
}

// filterDead drops packets aimed at dead chips.
type filterDead struct {
	Pattern
	alive []bool
}

// Dest implements Pattern: the wrapped pattern draws as usual (so RNG
// streams stay aligned with the pristine network), then destinations
// without a surviving terminal are silenced.
//
//sldf:hotpath
func (f filterDead) Dest(src int32, rng *engine.RNG) int32 {
	d := f.Pattern.Dest(src, rng)
	if d >= 0 && (int(d) >= len(f.alive) || !f.alive[d]) {
		return -1
	}
	return d
}

// FilterDead wraps p so packets to chips marked dead (alive[c] == false)
// are dropped at the source, the open-loop analogue of a host refusing to
// address a failed die. A nil alive slice returns p unchanged.
func FilterDead(p Pattern, alive []bool) Pattern {
	if alive == nil {
		return p
	}
	return filterDead{Pattern: p, alive: alive}
}

// Rate is an open-loop Bernoulli injection process: every injection node of
// every chip flips a coin each cycle so that the chip's expected offered
// load is FlitsPerChip flits/cycle, split evenly across its NodesPerChip
// injection nodes with PacketSize-flit packets.
type Rate struct {
	Pattern      Pattern
	FlitsPerChip float64
	PacketSize   int32
	NodesPerChip int
	prob         float64
	thresh       uint64
}

// NewRate builds the generator; it precomputes the per-node probability.
func NewRate(p Pattern, flitsPerChip float64, packetSize int32, nodesPerChip int) *Rate {
	r := new(Rate)
	r.Init(p, flitsPerChip, packetSize, nodesPerChip)
	return r
}

// Init (re)configures r in place, letting a measurement loop reuse one Rate
// value across load points instead of allocating a generator per point.
func (r *Rate) Init(p Pattern, flitsPerChip float64, packetSize int32, nodesPerChip int) {
	*r = Rate{
		Pattern:      p,
		FlitsPerChip: flitsPerChip,
		PacketSize:   packetSize,
		NodesPerChip: nodesPerChip,
	}
	r.prob = flitsPerChip / float64(packetSize) / float64(nodesPerChip)
	r.thresh = engine.BernoulliThreshold(r.prob)
}

// NextDest implements netsim.Generator. The precomputed integer threshold
// decides bit-identically to rng.Bernoulli(prob) — this is the simulator's
// single hottest RNG call (every injector, every cycle). The prob<=0 and
// prob>=1 edges consume no randomness, exactly like Bernoulli.
//
//sldf:hotpath
func (r *Rate) NextDest(now int64, srcChip int32, nodeIdx int, rng *engine.RNG) int32 {
	if r.prob <= 0 {
		return -1
	}
	if r.prob < 1 && !rng.Hit(r.thresh) {
		return -1
	}
	return r.Pattern.Dest(srcChip, rng)
}

// InjectionRate implements netsim.BernoulliGenerator, letting the cycle
// engine inline the coin flip.
func (r *Rate) InjectionRate() (prob float64, thresh uint64) {
	return r.prob, r.thresh
}

// Dest implements netsim.BernoulliGenerator: the post-flip destination pick.
//
//sldf:hotpath
func (r *Rate) Dest(now int64, srcChip int32, nodeIdx int, rng *engine.RNG) int32 {
	return r.Pattern.Dest(srcChip, rng)
}

var _ netsim.BernoulliGenerator = (*Rate)(nil)

var _ netsim.Generator = (*Rate)(nil)

// Volume is a closed-volume generator for makespan experiments: each chip
// sends exactly TotalFlits flits (ceil to whole packets) following the
// pattern, as fast as injection admits, then stops. Remaining counters are
// per (chip, node) and therefore safe under shard-parallel generation.
type Volume struct {
	Pattern    Pattern
	PacketSize int32
	remaining  [][]int64 // [chip][node] packets left
}

// NewVolume builds a volume generator for chips×nodes injection points.
func NewVolume(p Pattern, totalFlits int64, packetSize int32, chips, nodesPerChip int) *Volume {
	counts := make([]int, chips)
	for c := range counts {
		counts[c] = nodesPerChip
	}
	return NewVolumePerChip(p, totalFlits, packetSize, counts, nil)
}

// NewVolumePerChip builds a volume generator where chip c splits its
// TotalFlits across counts[c] injection nodes — the shape of a degraded
// network, where a chip that lost cores keeps fewer injectors but still
// owes the collective its full volume. A zero count silences the chip (a
// dead die owes nothing). participants, when non-nil, restricts the volume
// to the listed chips: everyone else starts exhausted, so Done() reflects
// only the chips the schedule actually involves. A nil participants charges
// every chip, matching NewVolume.
func NewVolumePerChip(p Pattern, totalFlits int64, packetSize int32, counts []int, participants []int32) *Volume {
	v := &Volume{Pattern: p, PacketSize: packetSize}
	v.remaining = make([][]int64, len(counts))
	active := make([]bool, len(counts))
	if participants == nil {
		for c := range active {
			active[c] = true
		}
	} else {
		for _, c := range participants {
			if int(c) < len(active) {
				active[c] = true
			}
		}
	}
	for c := range v.remaining {
		v.remaining[c] = make([]int64, counts[c])
		if !active[c] || counts[c] == 0 {
			continue
		}
		perNode := (totalFlits + int64(counts[c])*int64(packetSize) - 1) /
			(int64(counts[c]) * int64(packetSize))
		for n := range v.remaining[c] {
			v.remaining[c][n] = perNode
		}
	}
	return v
}

// NextDest implements netsim.Generator.
//
//sldf:hotpath
func (v *Volume) NextDest(now int64, srcChip int32, nodeIdx int, rng *engine.RNG) int32 {
	if v.remaining[srcChip][nodeIdx] <= 0 {
		return -1
	}
	d := v.Pattern.Dest(srcChip, rng)
	if d >= 0 {
		v.remaining[srcChip][nodeIdx]--
	}
	return d
}

// Done reports whether every injection point exhausted its volume.
func (v *Volume) Done() bool {
	for _, per := range v.remaining {
		for _, n := range per {
			if n > 0 {
				return false
			}
		}
	}
	return true
}

var _ netsim.Generator = (*Volume)(nil)
