package traffic

import (
	"math"
	"testing"
	"testing/quick"

	"sldf/internal/engine"
)

func rng() *engine.RNG {
	r := engine.NewRNG(7)
	return &r
}

func TestUniformRange(t *testing.T) {
	u := Uniform{N: 10}
	r := rng()
	for i := 0; i < 2000; i++ {
		src := r.Int31n(10)
		d := u.Dest(src, r)
		if d < 0 || d >= 10 || d == src {
			t.Fatalf("uniform dest %d for src %d", d, src)
		}
	}
}

func TestUniformBase(t *testing.T) {
	u := Uniform{N: 4, Base: 8}
	r := rng()
	if d := u.Dest(3, r); d != -1 {
		t.Fatalf("out-of-scope src produced dest %d", d)
	}
	for i := 0; i < 200; i++ {
		d := u.Dest(9, r)
		if d < 8 || d >= 12 || d == 9 {
			t.Fatalf("based uniform dest %d", d)
		}
	}
}

func TestUniformCoverage(t *testing.T) {
	u := Uniform{N: 8}
	r := rng()
	counts := make([]int, 8)
	for i := 0; i < 40000; i++ {
		counts[u.Dest(0, r)]++
	}
	if counts[0] != 0 {
		t.Fatal("self traffic generated")
	}
	want := 40000.0 / 7
	for d := 1; d < 8; d++ {
		if math.Abs(float64(counts[d])-want) > 0.1*want {
			t.Fatalf("dest %d count %d deviates from %f", d, counts[d], want)
		}
	}
}

func TestBitReverseIsInvolution(t *testing.T) {
	p := BitReverse(16).(bitPermutation)
	for v := 0; v < 16; v++ {
		w := p.perm(v, p.bits)
		if p.perm(w, p.bits) != v {
			t.Fatalf("bit-reverse not an involution at %d", v)
		}
	}
}

func TestBitPermutationsArePermutations(t *testing.T) {
	for _, mk := range []func(int32) Pattern{BitReverse, BitShuffle, BitTranspose} {
		p := mk(32).(bitPermutation)
		seen := map[int]bool{}
		for v := 0; v < 32; v++ {
			w := p.perm(v, p.bits)
			if w < 0 || w >= 32 || seen[w] {
				t.Fatalf("%s: perm(%d)=%d invalid or duplicate", p.name, v, w)
			}
			seen[w] = true
		}
	}
}

func TestBitPatternsNonPowerOfTwo(t *testing.T) {
	// 41 chips: the top chips (>= 32) fall back to uniform; all dests valid.
	r := rng()
	for _, mk := range []func(int32) Pattern{BitReverse, BitShuffle, BitTranspose} {
		p := mk(41)
		for src := int32(0); src < 41; src++ {
			for i := 0; i < 20; i++ {
				d := p.Dest(src, r)
				if d < -1 || d >= 41 {
					t.Fatalf("%s: dest %d out of range", p.Name(), d)
				}
			}
		}
	}
}

func TestBitShuffleKnownValues(t *testing.T) {
	p := BitShuffle(8).(bitPermutation)
	// rotate-left-1 over 3 bits: 0b011 -> 0b110, 0b100 -> 0b001.
	if got := p.perm(0b011, 3); got != 0b110 {
		t.Fatalf("shuffle(011) = %03b", got)
	}
	if got := p.perm(0b100, 3); got != 0b001 {
		t.Fatalf("shuffle(100) = %03b", got)
	}
}

func TestBitTransposeKnownValues(t *testing.T) {
	p := BitTranspose(16).(bitPermutation)
	// 4 bits, halves swap: 0b0111 -> 0b1101.
	if got := p.perm(0b0111, 4); got != 0b1101 {
		t.Fatalf("transpose(0111) = %04b", got)
	}
}

func TestHotspotConfinement(t *testing.T) {
	h := Hotspot{ChipsPerGroup: 8, HotGroups: []int32{0, 1, 2, 3}}
	r := rng()
	for src := int32(0); src < 80; src++ {
		d := h.Dest(src, r)
		g := src / 8
		if g >= 4 {
			if d != -1 {
				t.Fatalf("cold chip %d transmitted to %d", src, d)
			}
			continue
		}
		if d < 0 || d >= 32 {
			t.Fatalf("hot chip %d dest %d outside hot region", src, d)
		}
	}
}

// TestHotspotSingleChipGroupTerminates is the regression test for the
// unbounded rejection loop: with one hot W-group holding a single chip the
// only candidate destination is the source itself, and Dest used to spin
// forever. It must return silence instead.
func TestHotspotSingleChipGroupTerminates(t *testing.T) {
	h := Hotspot{ChipsPerGroup: 1, HotGroups: []int32{3}}
	r := rng()
	if d := h.Dest(3, r); d != -1 {
		t.Fatalf("degenerate hotspot returned %d, want -1 (silence)", d)
	}
	// Cold chips stay silent as before.
	if d := h.Dest(0, r); d != -1 {
		t.Fatalf("cold chip transmitted to %d", d)
	}
	// With a second single-chip hot group there is a real candidate; the
	// bounded loop (or its fallback) must find it, never the source.
	h2 := Hotspot{ChipsPerGroup: 1, HotGroups: []int32{3, 5}}
	for i := 0; i < 200; i++ {
		if d := h2.Dest(3, r); d != 5 {
			t.Fatalf("two-group degenerate hotspot returned %d, want 5", d)
		}
	}
}

func TestVolumePerChipParticipants(t *testing.T) {
	counts := []int{2, 0, 1, 2} // chip 1 lost every injector
	v := NewVolumePerChip(Ring{N: 4}, 64, 4, counts, []int32{0, 2})
	// Non-participants (3) and zero-count chips (1) start exhausted.
	if d := v.NextDest(0, 3, 0, rng()); d != -1 {
		t.Fatalf("non-participant injected to %d", d)
	}
	if !vDone(v, 1) {
		t.Fatal("zero-count chip owes volume")
	}
	// Chip 0 splits 64 flits over 2 nodes of 4-flit packets: 8 each; chip 2
	// pushes all 16 packets through its single surviving node.
	for n := 0; n < 2; n++ {
		for i := 0; i < 8; i++ {
			if d := v.NextDest(0, 0, n, rng()); d != 1 {
				t.Fatalf("chip 0 node %d packet %d: dest %d", n, i, d)
			}
		}
		if d := v.NextDest(0, 0, n, rng()); d != -1 {
			t.Fatal("chip 0 exceeded its volume")
		}
	}
	for i := 0; i < 16; i++ {
		if d := v.NextDest(0, 2, 0, rng()); d != 3 {
			t.Fatalf("chip 2 packet %d: dest %d", i, d)
		}
	}
	if !v.Done() {
		t.Fatal("volume not done after participants drained")
	}
}

// vDone reports whether chip c's volume is exhausted.
func vDone(v *Volume, c int) bool {
	for _, left := range v.remaining[c] {
		if left > 0 {
			return false
		}
	}
	return true
}

func TestWorstCaseNeighborGroup(t *testing.T) {
	w := WorstCase{ChipsPerGroup: 4, Groups: 5}
	r := rng()
	f := func(srcRaw uint8) bool {
		src := int32(srcRaw) % 20
		d := w.Dest(src, r)
		return d/4 == (src/4+1)%5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRingNeighbors(t *testing.T) {
	ring := Ring{N: 8}
	r := rng()
	for src := int32(0); src < 8; src++ {
		if d := ring.Dest(src, r); d != (src+1)%8 {
			t.Fatalf("ring dest(%d) = %d", src, d)
		}
	}
	bi := Ring{N: 8, Bidirectional: true}
	succ, pred := 0, 0
	for i := 0; i < 2000; i++ {
		d := bi.Dest(3, r)
		switch d {
		case 4:
			succ++
		case 2:
			pred++
		default:
			t.Fatalf("bidir ring dest %d", d)
		}
	}
	if succ < 800 || pred < 800 {
		t.Fatalf("bidir split %d/%d far from even", succ, pred)
	}
}

func TestRingWithBase(t *testing.T) {
	ring := Ring{N: 4, Base: 12}
	r := rng()
	if d := ring.Dest(15, r); d != 12 {
		t.Fatalf("ring wrap dest %d, want 12", d)
	}
	if d := ring.Dest(2, r); d != -1 {
		t.Fatalf("out-of-ring src produced %d", d)
	}
}

func TestRateExpectedLoad(t *testing.T) {
	// rate 1.0 flits/cycle/chip, 4-flit packets, 4 nodes → p = 1/16 per node.
	g := NewRate(Uniform{N: 16}, 1.0, 4, 4)
	r := rng()
	gen := 0
	const cycles = 200000
	for i := 0; i < cycles; i++ {
		if g.NextDest(int64(i), 3, 1, r) >= 0 {
			gen++
		}
	}
	got := float64(gen) / cycles
	if math.Abs(got-1.0/16) > 0.004 {
		t.Fatalf("per-node generation rate %v, want 0.0625", got)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"uniform", "bit-reverse", "bit-shuffle", "bit-transpose"} {
		p, err := ByName(name, 64)
		if err != nil || p == nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("nope", 64); err == nil {
		t.Fatal("unknown pattern must error")
	}
}

func TestVolumeExhausts(t *testing.T) {
	v := NewVolume(Ring{N: 4}, 64, 4, 4, 2) // 64 flits = 16 pkts = 8/node
	r := rng()
	total := 0
	for cyc := 0; cyc < 100; cyc++ {
		for chip := int32(0); chip < 4; chip++ {
			for node := 0; node < 2; node++ {
				if v.NextDest(int64(cyc), chip, node, r) >= 0 {
					total++
				}
			}
		}
	}
	if !v.Done() {
		t.Fatal("volume generator not exhausted")
	}
	if total != 4*2*8 {
		t.Fatalf("generated %d packets, want %d", total, 4*2*8)
	}
}

func TestPermutationPattern(t *testing.T) {
	p := Permutation{Map: []int32{1, 0, 3, 2}, Desc: "swap"}
	r := rng()
	if d := p.Dest(0, r); d != 1 {
		t.Fatalf("perm dest %d", d)
	}
	if d := p.Dest(9, r); d != -1 {
		t.Fatalf("out-of-map dest %d", d)
	}
}
