// Package sldf is a cycle-accurate simulation and analysis library for the
// Switch-Less Dragonfly on Wafers interconnection architecture (Feng & Ma,
// SC 2024), together with the switch-based baselines the paper compares
// against.
//
// The library builds four system kinds — a single non-blocking switch, a
// standalone wafer C-group mesh, a switch-based Dragonfly, and the
// switch-less Dragonfly on wafers — routes them with the paper's
// minimal/non-minimal algorithms under either the baseline (Algorithm 1) or
// reduced virtual-channel scheme, and measures latency/throughput/energy
// under the paper's synthetic, adversarial and collective workloads.
//
// Quick start:
//
//	cfg := sldf.Config{Kind: sldf.SwitchlessDragonfly, SLDF: sldf.Radix16SLDF()}
//	sys, err := sldf.Build(cfg)
//	if err != nil { ... }
//	defer sys.Close()
//	pat, _ := sys.PatternFor("uniform")
//	res, err := sys.MeasureLoad(pat, 0.5, sldf.DefaultSim())
//	fmt.Println(res.Point.Latency, res.Point.Throughput)
//
// The analytical side of the paper is exposed through the Analysis, Cost
// and Layout entry points (Eqs. 1–7, Table III, Fig. 9).
package sldf

import (
	"sldf/internal/analysis"
	"sldf/internal/campaign"
	"sldf/internal/core"
	"sldf/internal/cost"
	"sldf/internal/layout"
	"sldf/internal/metrics"
	"sldf/internal/netsim"
	"sldf/internal/routing"
	"sldf/internal/topology"
)

// Cycle engines (SimParams.Engine). Both produce bitwise-identical
// statistics; the active-set engine skips quiescent routers and links.
const (
	// EngineActiveSet is the default worklist-driven engine.
	EngineActiveSet = netsim.EngineActiveSet
	// EngineReference is the full-scan serial-reference engine, kept so any
	// active-set result can be cross-checked.
	EngineReference = netsim.EngineReference
)

// System kinds.
const (
	// SwitchDragonfly is the switch-based Dragonfly baseline.
	SwitchDragonfly = core.SwitchDragonfly
	// SwitchlessDragonfly is the paper's wafer-based architecture.
	SwitchlessDragonfly = core.SwitchlessDragonfly
	// SingleSwitch is one non-blocking switch with terminal chips.
	SingleSwitch = core.SingleSwitch
	// MeshCGroup is a standalone wafer C-group 2D mesh.
	MeshCGroup = core.MeshCGroup
)

// Routing modes and VC schemes.
const (
	// Minimal is shortest-path Dragonfly routing.
	Minimal = routing.Minimal
	// Valiant misroutes through a random intermediate W-group.
	Valiant = routing.Valiant
	// BaselineVC is Algorithm 1's one-VC-per-C-group discipline.
	BaselineVC = routing.BaselineVC
	// ReducedVC is the paper's merged-VC scheme (one extra VC vs the
	// traditional Dragonfly).
	ReducedVC = routing.ReducedVC
)

// Core configuration and execution types.
type (
	// Config describes a system to build.
	Config = core.Config
	// System is a built network ready to measure.
	System = core.System
	// SimParams are measurement-window parameters.
	SimParams = core.SimParams
	// Result is one measured load point.
	Result = core.Result
	// Series is a labelled latency/throughput curve.
	Series = metrics.Series
	// Figure is a named set of curves.
	Figure = metrics.Figure
	// Point is one entry of a Series.
	Point = metrics.Point
	// SLDFParams sizes a switch-less Dragonfly.
	SLDFParams = topology.SLDFParams
	// DragonflyParams sizes a switch-based Dragonfly.
	DragonflyParams = topology.DragonflyParams
	// EngineKind selects the cycle engine (see SimParams.Engine).
	EngineKind = netsim.EngineKind
	// RunOptions configure how a sweep's points execute (concurrent jobs,
	// result store, execution backend).
	RunOptions = core.RunOptions
	// Cache is the on-disk tier of the point store.
	Cache = campaign.Cache
	// PointStore is the pluggable result-store seam: the disk Cache, an
	// in-memory LRU, or a tiered combination (see NewTieredStore).
	PointStore = campaign.PointStore
	// Backend is the pluggable execution seam: jobs run on this process's
	// worker pool or shard across sldfd worker daemons, with bitwise
	// identical results.
	Backend = campaign.Backend
)

// Live fault churn: a Config.Churn timeline kills and repairs components
// at seeded cycles mid-run, with routing recomputed and in-flight packets
// accounted per policy. See also System.ApplyChipKill and
// System.MeasureChurnCollective.
type (
	// FaultTimeline is a deterministic in-run death/repair schedule
	// (Config.Churn); parse one from its CLI spec with ParseChurn.
	FaultTimeline = topology.FaultTimeline
	// TimedFault is one timeline event: a component death or repair at a
	// cycle.
	TimedFault = netsim.TimedFault
	// DropPolicy says what happens to packets a death strands.
	DropPolicy = netsim.DropPolicy
)

// Drop policies for packets stranded by a component death.
const (
	// DropInFlight drops stranded packets (counted in Stats.DroppedPkts).
	DropInFlight = netsim.DropInFlight
	// RetrySource re-injects stranded packets at their source (counted in
	// Stats.RetriedPkts).
	RetrySource = netsim.RetrySource
)

// ParseChurn parses a churn spec like
// "links=0.02,routers=0.01,seed=7,start=1000,end=5000,repair=2000,policy=retry"
// into an armed fault timeline; a blank spec returns an empty (disarmed)
// timeline.
func ParseChurn(spec string) (FaultTimeline, error) { return topology.ParseChurn(spec) }

// RouterFault builds a timeline event killing (repair=false) or repairing
// (repair=true) a router at the given cycle.
func RouterFault(cycle int64, router int32, repair bool) TimedFault {
	return netsim.RouterFault(cycle, router, repair)
}

// LinkFault builds a timeline event killing or repairing a link at the
// given cycle.
func LinkFault(cycle int64, link int32, repair bool) TimedFault {
	return netsim.LinkFault(cycle, link, repair)
}

// Build constructs the system described by cfg.
func Build(cfg Config) (*System, error) { return core.Build(cfg) }

// Sweep measures a named pattern over a list of injection rates, each point
// starting from an identical just-built network state.
func Sweep(cfg Config, pattern string, rates []float64, sp SimParams) (Series, error) {
	return core.Sweep(cfg, pattern, rates, sp)
}

// SweepOpts is Sweep with execution options: opts.Jobs measures points
// concurrently (results are bitwise identical for any value), opts.Store
// lets a re-run skip points already measured, and opts.Backend selects
// where points execute (local pool or remote worker daemons).
func SweepOpts(cfg Config, pattern string, rates []float64, sp SimParams, opts RunOptions) (Series, error) {
	return core.SweepOpts(cfg, pattern, rates, sp, opts)
}

// OpenCache opens (creating if needed) an on-disk point cache at dir.
func OpenCache(dir string) (*Cache, error) { return campaign.OpenCache(dir) }

// NewTieredStore fronts an on-disk cache with an in-memory LRU holding up
// to mem points, so hot replays never touch the filesystem. cache may be
// nil for a memory-only store.
func NewTieredStore(mem int, cache *Cache) PointStore {
	if cache == nil {
		return campaign.NewMemoryLRU[metrics.Point](mem)
	}
	return campaign.NewTiered[metrics.Point](campaign.NewMemoryLRU[metrics.Point](mem), cache)
}

// RateGrid returns the inclusive injection-rate grid lo, lo+step, ..., hi
// using integer stepping (no accumulated floating-point drift).
func RateGrid(lo, hi, step float64) []float64 { return core.RateGrid(lo, hi, step) }

// DefaultSim returns the paper's Table IV measurement parameters.
func DefaultSim() SimParams { return core.DefaultSim() }

// QuickSim returns CI-scale measurement parameters.
func QuickSim() SimParams { return core.QuickSim() }

// Paper system configurations.
var (
	// Radix16SLDF is the paper's small evaluated system (1312 chips).
	Radix16SLDF = core.Radix16SLDF
	// Radix16DF is its switch-based baseline.
	Radix16DF = core.Radix16DF
	// Radix32SLDF is the paper's large evaluated system (18560 chips).
	Radix32SLDF = core.Radix32SLDF
	// Radix32DF is its switch-based baseline.
	Radix32DF = core.Radix32DF
)

// Analysis exposes the closed-form model of Sec. III-B (Eqs. 1–7).
type Analysis = analysis.Params

// TableIII returns the paper's Table III comparison rows.
func TableIII() []cost.Row { return cost.TableIII() }

// LayoutReport computes the Fig. 9 C-group feasibility numbers.
func LayoutReport() (layout.Report, error) { return layout.PaperPlan().Analyze() }
