package sldf_test

import (
	"testing"

	"sldf"
)

// Integration tests of the public facade: the workflows the README promises.

func TestPublicQuickstart(t *testing.T) {
	cfg := sldf.Config{Kind: sldf.SwitchlessDragonfly, SLDF: sldf.Radix16SLDF(), Seed: 1}
	cfg.SLDF.G = 1
	sys, err := sldf.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if sys.Chips != 32 {
		t.Fatalf("chips = %d, want 32", sys.Chips)
	}
	pat, err := sys.PatternFor("uniform")
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.MeasureLoad(pat, 0.4, sldf.QuickSim())
	if err != nil {
		t.Fatal(err)
	}
	if res.Point.Throughput < 0.3 || res.Point.Throughput > 0.5 {
		t.Fatalf("throughput %v at offered 0.4", res.Point.Throughput)
	}
}

func TestPublicSweep(t *testing.T) {
	cfg := sldf.Config{Kind: sldf.MeshCGroup, ChipletDim: 2, NoCDim: 2, Seed: 2}
	s, err := sldf.Sweep(cfg, "uniform", []float64{0.5, 1.5, 3.0}, sldf.QuickSim())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 3 {
		t.Fatalf("points = %d", len(s.Points))
	}
	if s.Saturation(3) < 1.0 {
		t.Fatalf("mesh C-group saturation %v too low", s.Saturation(3))
	}
}

func TestPublicAnalytical(t *testing.T) {
	a := sldf.Analysis{N: 12, M: 4, A: 4, B: 8, H: 17}
	if a.Terminals() != 279040 {
		t.Fatalf("Eq.1 N = %d", a.Terminals())
	}
	rows := sldf.TableIII()
	if len(rows) != 9 {
		t.Fatalf("Table III rows = %d", len(rows))
	}
	rep, err := sldf.LayoutReport()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Feasible() {
		t.Fatal("paper layout must be feasible")
	}
}

func TestPublicModeAndScheme(t *testing.T) {
	cfg := sldf.Config{
		Kind:   sldf.SwitchlessDragonfly,
		SLDF:   sldf.SLDFParams{NoCDim: 2, ChipCols: 2, ChipRows: 2, AB: 2, H: 2},
		Mode:   sldf.Valiant,
		Scheme: sldf.ReducedVC,
		Seed:   3,
	}
	sys, err := sldf.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	pat, _ := sys.PatternFor("uniform")
	res, err := sys.MeasureLoad(pat, 0.3, sldf.QuickSim())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DeliveredPkts == 0 {
		t.Fatal("nothing delivered under valiant+reduced")
	}
}
